//! Scenario: watch operand isolation work, cycle by cycle.
//!
//! Runs the FIR design before and after isolation, dumping VCD waveforms of
//! both so the blocked operand transitions are visible in any wave viewer,
//! and prints the toggle statistics that the power model consumes.
//!
//! ```sh
//! cargo run --example waveforms
//! # then open target/fir_before.vcd / target/fir_after.vcd
//! ```

use operand_isolation::core::{optimize, IsolationConfig, IsolationStyle};
use operand_isolation::designs::fir::{build, FirParams};
use operand_isolation::sim::vcd::VcdWriter;
use operand_isolation::sim::Testbench;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = build(&FirParams {
        width: 12,
        taps: 4,
        valid_duty: 0.2,
    });

    let config = IsolationConfig::default()
        .with_style(IsolationStyle::Latch)
        .with_sim_cycles(2000);
    let outcome = optimize(&design.netlist, &design.stimuli, &config)?;
    println!("{outcome}");

    std::fs::create_dir_all("target")?;
    for (netlist, path) in [
        (&design.netlist, "target/fir_before.vcd"),
        (&outcome.netlist, "target/fir_after.vcd"),
    ] {
        let file = BufWriter::new(File::create(path)?);
        let mut vcd = VcdWriter::new(file);
        let mut tb = Testbench::from_plan(netlist, &design.stimuli)?;
        let report = tb.run_with_vcd(300, &mut vcd)?;
        // Print the per-tap multiplier input activity.
        print!("{path}: multiplier operand toggle rates:");
        for t in 0..4 {
            let mul = netlist.find_cell(&format!("mul{t}")).expect("tap");
            let input = netlist.cell(mul).inputs()[0];
            print!(" {:.2}", report.toggle_rate(input));
        }
        println!();
    }
    println!("open the two VCD files to see the operands freeze while `valid` is low");
    Ok(())
}
