//! Scenario: a control-dominated ALU at varying instruction-valid duty
//! cycles — the paper's Section 1 motivating workload.
//!
//! Shows how the achievable power reduction grows as the ALU idles more,
//! and how the optimizer's decisions adapt (at high utilization, isolating
//! stops paying and the cost function rejects candidates).
//!
//! ```sh
//! cargo run --release --example alu_duty_sweep
//! ```

use operand_isolation::core::{optimize, IsolationConfig, IsolationStyle};
use operand_isolation::designs::alu_ctrl::{build, AluParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} | {:>9} {:>6} | {:>9} {:>6}",
        "duty", "AND %red", "#iso", "LAT %red", "#iso"
    );
    for duty in [0.05, 0.2, 0.4, 0.6, 0.8, 0.95] {
        let design = build(&AluParams {
            width: 16,
            valid_duty: duty,
        });
        let mut row = format!("{duty:>6.2} |");
        for style in [IsolationStyle::And, IsolationStyle::Latch] {
            let config = IsolationConfig::default()
                .with_style(style)
                .with_sim_cycles(1500);
            let outcome = optimize(&design.netlist, &design.stimuli, &config)?;
            row.push_str(&format!(
                " {:>8.2}% {:>6} |",
                outcome.power_reduction_percent(),
                outcome.num_isolated()
            ));
        }
        println!("{row}");
    }
    println!(
        "\nEven at full utilization the mux-selected ALU keeps redundant \
         units busy,\nso isolation still pays; the savings grow further as \
         the valid duty drops."
    );
    Ok(())
}
